(* Pid.Dense_set must be observationally identical to Pid.Set, and the
   dense-compiled Fbqs.Quorum must be observationally identical to the
   seed's tree-set Algorithm 1 — both checked on random inputs. *)

open Graphkit
module D = Pid.Dense_set

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

(* ---- unit: representation edges -------------------------------------- *)

let test_word_boundaries () =
  (* ids straddling the 63-bit word boundary (62/63/64) and beyond *)
  let ids = [ 0; 1; 61; 62; 63; 64; 125; 126; 127; 200 ] in
  let d = D.of_list ids in
  Alcotest.(check (list int)) "elements ascending" ids (D.elements d);
  List.iter
    (fun i -> Alcotest.(check bool) (string_of_int i) true (D.mem i d))
    ids;
  Alcotest.(check bool) "65 absent" false (D.mem 65 d);
  Alcotest.(check int) "cardinal" (List.length ids) (D.cardinal d);
  Alcotest.(check (option int)) "min" (Some 0) (D.min_elt_opt d);
  Alcotest.(check (option int)) "max" (Some 200) (D.max_elt_opt d);
  let d' = D.remove 200 d in
  Alcotest.(check (option int)) "max after remove" (Some 127)
    (D.max_elt_opt d');
  Alcotest.(check bool) "remove absent is identity" true
    (D.equal d (D.remove 500 d))

let test_of_range () =
  Alcotest.(check (list int)) "of_range" [ 3; 4; 5; 6 ]
    (D.elements (D.of_range 3 6));
  Alcotest.(check bool) "empty range" true (D.is_empty (D.of_range 5 4));
  Alcotest.check pid_set "matches Pid.Set.of_range" (Pid.Set.of_range 0 130)
    (D.to_set (D.of_range 0 130))

let test_negative_rejected () =
  Alcotest.check_raises "add" (Invalid_argument "Pid.Dense_set: negative process id")
    (fun () -> ignore (D.add (-1) D.empty));
  Alcotest.check_raises "of_list" (Invalid_argument "Pid.Dense_set: negative process id")
    (fun () -> ignore (D.of_list [ 3; -2 ]));
  Alcotest.(check bool) "mem is total" false (D.mem (-1) (D.of_list [ 0 ]))

(* ---- qcheck: agreement with Pid.Set on random operation sequences ---- *)

let gen_ids = QCheck.Gen.(list_size (int_bound 40) (int_bound 200))

let arb_ids = QCheck.make ~print:QCheck.Print.(list int) gen_ids

let arb_ids2 =
  QCheck.make
    ~print:QCheck.Print.(pair (list int) (list int))
    QCheck.Gen.(pair gen_ids gen_ids)

let both l = (Pid.Set.of_list l, D.of_list l)

let agrees s d = Pid.Set.equal s (D.to_set d)

let count = 500

let prop_of_list_roundtrip =
  QCheck.Test.make ~count ~name:"of_list/to_set/elements agree with Pid.Set"
    arb_ids (fun l ->
      let s, d = both l in
      agrees s d
      && D.elements d = Pid.Set.elements s
      && D.cardinal d = Pid.Set.cardinal s
      && D.equal (D.of_set s) d)

let prop_set_algebra =
  QCheck.Test.make ~count ~name:"union/inter/diff agree with Pid.Set" arb_ids2
    (fun (l1, l2) ->
      let s1, d1 = both l1 and s2, d2 = both l2 in
      agrees (Pid.Set.union s1 s2) (D.union d1 d2)
      && agrees (Pid.Set.inter s1 s2) (D.inter d1 d2)
      && agrees (Pid.Set.diff s1 s2) (D.diff d1 d2)
      && agrees (Pid.Set.diff s2 s1) (D.diff d2 d1))

let prop_predicates =
  QCheck.Test.make ~count ~name:"subset/disjoint/equal/mem agree with Pid.Set"
    arb_ids2 (fun (l1, l2) ->
      let s1, d1 = both l1 and s2, d2 = both l2 in
      D.subset d1 d2 = Pid.Set.subset s1 s2
      && D.disjoint d1 d2 = Pid.Set.disjoint s1 s2
      && D.equal d1 d2 = Pid.Set.equal s1 s2
      && List.for_all (fun i -> D.mem i d2 = Pid.Set.mem i s2) l1)

let prop_inter_cardinal =
  QCheck.Test.make ~count
    ~name:"inter_cardinal = cardinal of intersection" arb_ids2
    (fun (l1, l2) ->
      let s1, d1 = both l1 and s2, d2 = both l2 in
      D.inter_cardinal d1 d2 = Pid.Set.cardinal (Pid.Set.inter s1 s2)
      && D.inter_cardinal d1 d2 = D.cardinal (D.inter d1 d2))

let prop_fold_order =
  QCheck.Test.make ~count ~name:"fold/iter/filter order agrees with Pid.Set"
    arb_ids (fun l ->
      let s, d = both l in
      D.fold (fun i acc -> i :: acc) d []
      = Pid.Set.fold (fun i acc -> i :: acc) s []
      && (let seen = ref [] in
          D.iter (fun i -> seen := i :: !seen) d;
          List.rev !seen = Pid.Set.elements s)
      && agrees
           (Pid.Set.filter (fun i -> i mod 3 = 0) s)
           (D.filter (fun i -> i mod 3 = 0) d)
      && D.for_all (fun i -> i mod 2 = 0) d
         = Pid.Set.for_all (fun i -> i mod 2 = 0) s
      && D.exists (fun i -> i mod 7 = 1) d
         = Pid.Set.exists (fun i -> i mod 7 = 1) s)

let prop_add_remove =
  QCheck.Test.make ~count ~name:"add/remove agree with Pid.Set" arb_ids2
    (fun (l1, l2) ->
      let s, d =
        List.fold_left
          (fun (s, d) i -> (Pid.Set.add i s, D.add i d))
          (both l1) l2
      in
      agrees s d
      && (let s', d' =
            List.fold_left
              (fun (s, d) i -> (Pid.Set.remove i s, D.remove i d))
              (s, d) l1
          in
          agrees s' d'))

(* ---- qcheck: the rewired Quorum vs the seed Algorithm 1 -------------- *)

(* Algorithm 1 verbatim, straight off Pid.Set + Slice.has_slice_within:
   the reference the dense compiled path must match bit for bit. *)
let ref_is_quorum sys q =
  (not (Pid.Set.is_empty q))
  && Pid.Set.for_all
       (fun i -> Fbqs.Slice.has_slice_within (Fbqs.Quorum.slices_of sys i) q)
       q

let ref_greatest_quorum_within sys set =
  let rec go cur =
    let keep =
      Pid.Set.filter
        (fun i -> Fbqs.Slice.has_slice_within (Fbqs.Quorum.slices_of sys i) cur)
        cur
    in
    if Pid.Set.equal keep cur then cur else go keep
  in
  go set

(* Random mixed systems: explicit slice lists, threshold slices (some
   shared, some unsatisfiable), absent processes — plus a random
   candidate set that may name non-participants. *)
let gen_system_and_candidate =
  QCheck.Gen.(
    let* n = int_range 3 12 in
    let universe = List.init n (fun i -> i + 1) in
    let gen_member = int_range 1 n in
    let gen_slice_kind pid =
      let* kind = int_bound 3 in
      match kind with
      | 0 ->
          (* explicit slice list *)
          let* slices =
            list_size (int_range 1 3)
              (list_size (int_range 1 3) gen_member)
          in
          return (Some (pid, Fbqs.Slice.explicit (List.map Pid.Set.of_list slices)))
      | 1 | 2 ->
          (* threshold over a random member pool; threshold may exceed
             the pool (empty slice set) or be 0 (always satisfied) *)
          let* pool = list_size (int_range 1 n) gen_member in
          let members = Pid.Set.of_list pool in
          let* threshold = int_bound (Pid.Set.cardinal members + 2) in
          return (Some (pid, Fbqs.Slice.threshold ~members ~threshold))
      | _ ->
          (* silent process: declares nothing *)
          return None
    in
    let* assoc = flatten_l (List.map gen_slice_kind universe) in
    let sys = Fbqs.Quorum.system_of_list (List.filter_map Fun.id assoc) in
    let* candidate = list_size (int_bound (n + 2)) (int_range 1 (n + 2)) in
    return (sys, Pid.Set.of_list candidate))

let arb_system_and_candidate =
  QCheck.make
    ~print:(fun (sys, q) ->
      Format.asprintf "system=%a q=%a" (Pid.Map.pp Fbqs.Slice.pp) sys
        Pid.Set.pp q)
    gen_system_and_candidate

let prop_is_quorum_equiv =
  QCheck.Test.make ~count ~name:"is_quorum = seed Algorithm 1"
    arb_system_and_candidate (fun (sys, q) ->
      Fbqs.Quorum.is_quorum sys q = ref_is_quorum sys q)

let prop_greatest_equiv =
  QCheck.Test.make ~count ~name:"greatest_quorum_within = seed fixpoint"
    arb_system_and_candidate (fun (sys, q) ->
      Pid.Set.equal
        (Fbqs.Quorum.greatest_quorum_within sys q)
        (ref_greatest_quorum_within sys q))

let prop_threshold_sharing =
  (* Algorithm 2 shape: every process shares one threshold record. The
     compiled class cache must give the same answers as the reference on
     candidates around the threshold boundary. *)
  QCheck.Test.make ~count:200 ~name:"shared-threshold systems match seed"
    (QCheck.make
       ~print:QCheck.Print.(pair int int)
       QCheck.Gen.(pair (int_range 4 64) (int_bound 66)))
    (fun (n, k) ->
      let members = Pid.Set.of_range 1 n in
      let threshold = (2 * n / 3) + 1 in
      let slice = Fbqs.Slice.threshold ~members ~threshold in
      let sys =
        Fbqs.Quorum.system_of_list
          (List.map (fun i -> (i, slice)) (Pid.Set.elements members))
      in
      let q = Pid.Set.of_range 1 (min (max 1 k) n) in
      Fbqs.Quorum.is_quorum sys q = ref_is_quorum sys q
      && Pid.Set.equal
           (Fbqs.Quorum.greatest_quorum_within sys q)
           (ref_greatest_quorum_within sys q))

let suites =
  [
    ( "dense_set",
      [
        Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
        Alcotest.test_case "of_range" `Quick test_of_range;
        Alcotest.test_case "negative ids rejected" `Quick
          test_negative_rejected;
        QCheck_alcotest.to_alcotest prop_of_list_roundtrip;
        QCheck_alcotest.to_alcotest prop_set_algebra;
        QCheck_alcotest.to_alcotest prop_predicates;
        QCheck_alcotest.to_alcotest prop_inter_cardinal;
        QCheck_alcotest.to_alcotest prop_fold_order;
        QCheck_alcotest.to_alcotest prop_add_remove;
        QCheck_alcotest.to_alcotest prop_is_quorum_equiv;
        QCheck_alcotest.to_alcotest prop_greatest_equiv;
        QCheck_alcotest.to_alcotest prop_threshold_sharing;
      ] );
  ]
