open Graphkit
open Fbqs

let set = Pid.Set.of_list

let fig1_system =
  Quorum.system_of_list
    (List.map
       (fun (i, slices) -> (i, Slice.explicit slices))
       Graphkit.Builtin.fig1_slices)

let w = Pid.Set.of_range 1 7

let test_fig1_intertwined () =
  (* Section III-D: "every two correct processes are intertwined". *)
  Alcotest.(check bool) "W intertwined (correct witness)" true
    (Intertwine.set_intertwined fig1_system (Correct_witness w) w)

let test_fig1_pairs () =
  Alcotest.(check bool) "1 and 3" true
    (Intertwine.pair_intertwined fig1_system (Correct_witness w) 1 3);
  Alcotest.(check bool) "5 and 7" true
    (Intertwine.pair_intertwined fig1_system (Correct_witness w) 5 7)

let test_disjoint_quorums_detected () =
  (* Two independent 2-cliques trusting only themselves. *)
  let sys =
    Quorum.system_of_list
      [
        (1, Slice.explicit [ set [ 2 ] ]);
        (2, Slice.explicit [ set [ 1 ] ]);
        (3, Slice.explicit [ set [ 4 ] ]);
        (4, Slice.explicit [ set [ 3 ] ]);
      ]
  in
  let all = Pid.Set.of_range 1 4 in
  Alcotest.(check bool) "not intertwined" false
    (Intertwine.set_intertwined sys (Correct_witness all) all);
  match Intertwine.violating_pair sys (Correct_witness all) all with
  | Some (i, qi, j, qj) ->
      Alcotest.(check bool) "witness quorums disjoint" true
        (Pid.Set.is_empty (Pid.Set.inter qi qj));
      Alcotest.(check bool) "witness processes differ" true (i <> j)
  | None -> Alcotest.fail "expected a violation witness"

let test_threshold_mode () =
  (* 3-of-4 quorums pairwise intersect in >= 2 members: intertwined for
     f = 1 but not for f = 2. *)
  let members = Pid.Set.of_range 1 4 in
  let sys =
    Quorum.system_of_list
      (List.map
         (fun i -> (i, Slice.threshold ~members ~threshold:3))
         (Pid.Set.elements members))
  in
  Alcotest.(check bool) "f=1 ok" true
    (Intertwine.set_intertwined sys (Threshold 1) members);
  Alcotest.(check bool) "f=2 fails" false
    (Intertwine.set_intertwined sys (Threshold 2) members)

let test_reflexive_violation () =
  (* Two quorums of the same process always share that process, so the
     correct-witness mode can never fail reflexively for a correct
     process — but the threshold mode can: {1,2} and {1,3} meet in only
     one process, which is not > f = 1. *)
  let sys =
    Quorum.system_of_list
      [
        (1, Slice.explicit [ set [ 2 ]; set [ 3 ] ]);
        (2, Slice.explicit [ set [ 2 ] ]);
        (3, Slice.explicit [ set [ 3 ] ]);
      ]
  in
  Alcotest.(check bool) "correct-witness mode is fine reflexively" true
    (Intertwine.pair_intertwined sys
       (Correct_witness (Pid.Set.of_range 1 3))
       1 1);
  Alcotest.(check bool) "threshold mode catches the thin overlap" false
    (Intertwine.pair_intertwined sys (Threshold 1) 1 1)

let test_threshold_pair_ok () =
  Alcotest.(check bool) "intersection of 2 > f=1" true
    (Intertwine.threshold_pair_ok ~f:1 (set [ 1; 2; 3 ]) (set [ 2; 3; 4 ]));
  Alcotest.(check bool) "intersection of 1 not > f=1" false
    (Intertwine.threshold_pair_ok ~f:1 (set [ 1; 2 ]) (set [ 2; 3 ]))

let suites =
  [
    ( "intertwine",
      [
        Alcotest.test_case "fig1 W intertwined" `Quick test_fig1_intertwined;
        Alcotest.test_case "fig1 pairs" `Quick test_fig1_pairs;
        Alcotest.test_case "disjoint quorums detected" `Quick
          test_disjoint_quorums_detected;
        Alcotest.test_case "threshold mode" `Quick test_threshold_mode;
        Alcotest.test_case "reflexive violation" `Quick
          test_reflexive_violation;
        Alcotest.test_case "threshold_pair_ok" `Quick test_threshold_pair_ok;
      ] );
  ]
