lib/fbqs/intertwine.ml: Graphkit List Option Pid Quorum
