(* Schedule fuzzing: random pre-GST partitions hunting for safety
   violations.

   The dividing line the paper draws is exactly reproduced here:
   - systems whose quorums intertwine (threshold systems, Algorithm 2
     slices) must keep agreement under EVERY schedule;
   - the local-slice counter-example system loses agreement under some
     (indeed most bipartition) schedules. *)

open Graphkit
open Scp

let v = Value.of_ints

let fuzz_delay ~seed ~n = Simkit.Delay.random_partition ~gst:30_000 ~delta:5 ~seed ~n

(* All fuzz runs share the historical flat-entry-point defaults with a
   100k-tick horizon and a fuzzed delay model. *)
let run_fuzz ~seed ~delay ~system ~peers_of ~initial_value_of ~fault_of () =
  let d = Runner.default_cfg in
  Runner.run_cfg
    ~cfg:
      {
        d with
        run = { d.run with seed; delay = Some delay; max_time = 100_000 };
      }
    ~system ~peers_of ~initial_value_of ~fault_of ()

let prop_threshold_system_safe_under_fuzz =
  QCheck.Test.make ~count:20
    ~name:"3-of-4 threshold system: agreement under random partitions"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let members = Pid.Set.of_range 1 4 in
      let system =
        Fbqs.Quorum.system_of_list
          (List.map
             (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:3))
             (Pid.Set.elements members))
      in
      let o =
        run_fuzz ~seed
          ~delay:(fuzz_delay ~seed ~n:5)
          ~system
          ~peers_of:(fun _ -> members)
          ~initial_value_of:(fun i -> v [ i ])
          ~fault_of:(fun _ -> None)
          ()
      in
      (* agreement and validity are unconditional; termination holds
         because the partition heals at GST *)
      o.agreement && o.validity && o.all_decided)

let prop_algorithm2_fig2_safe_under_fuzz =
  QCheck.Test.make ~count:12
    ~name:"Algorithm 2 slices: agreement under random partitions"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let system = Cup.Slice_builder.system_via_oracle ~f:1 Builtin.fig2 in
      let peers_of i = Fbqs.Slice.domain (Fbqs.Quorum.slices_of system i) in
      let o =
        run_fuzz ~seed
          ~delay:(fuzz_delay ~seed ~n:8)
          ~system ~peers_of
          ~initial_value_of:(fun i -> v [ i ])
          ~fault_of:(fun _ -> None)
          ()
      in
      o.agreement && o.validity && o.all_decided)

let test_local_slices_violated_by_some_schedule () =
  (* On the counter-example family the sink/non-sink bipartition breaks
     agreement; random bipartitions hit it (or another splitting cut)
     with decent probability, so a small seed sweep must find at least
     one violation. *)
  let g = Generators.fig2_family ~sink_size:4 ~non_sink:3 in
  let pd = Cup.Participant_detector.of_graph ~f:1 g in
  let system = Cup.Local_slices.system ~rule:Cup.Local_slices.all_but_one pd in
  let violated = ref false in
  for seed = 0 to 19 do
    if not !violated then begin
      let o =
        run_fuzz ~seed
          ~delay:(fuzz_delay ~seed ~n:7)
          ~system
          ~peers_of:(fun i -> Cup.Participant_detector.query pd i)
          ~initial_value_of:(fun i -> v [ (if i < 4 then 100 else 200) ])
          ~fault_of:(fun _ -> None)
          ()
      in
      if o.all_decided && not o.agreement then violated := true
    end
  done;
  Alcotest.(check bool) "some random schedule splits the local slices" true
    !violated

let suites =
  [
    ( "schedule_fuzz",
      [
        QCheck_alcotest.to_alcotest prop_threshold_system_safe_under_fuzz;
        QCheck_alcotest.to_alcotest prop_algorithm2_fig2_safe_under_fuzz;
        Alcotest.test_case "local slices violated by fuzzing" `Quick
          test_local_slices_violated_by_some_schedule;
      ] );
  ]
