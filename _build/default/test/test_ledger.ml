open Graphkit
open Scp

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let tx_pool slot node = Value.of_ints [ (slot * 100) + node ]

let test_three_slots_fault_free () =
  let r =
    Ledger.run ~slots:3
      ~system:(threshold_system 4 3)
      ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
      ~tx_pool
      ~fault_of:(fun _ -> None)
      ()
  in
  Alcotest.(check bool) "consistent" true r.consistent;
  Alcotest.(check bool) "complete" true r.complete;
  Pid.Map.iter
    (fun pid entries ->
      Alcotest.(check int)
        (Printf.sprintf "node %d closed 3 slots" pid)
        3 (List.length entries);
      List.iteri
        (fun i (e : Ledger.entry) ->
          Alcotest.(check int) "slots in order" i e.slot)
        entries)
    r.ledgers

let test_slots_isolated () =
  (* Transactions proposed for slot k never leak into slot k'. *)
  let r =
    Ledger.run ~slots:2
      ~system:(threshold_system 4 3)
      ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
      ~tx_pool
      ~fault_of:(fun _ -> None)
      ()
  in
  Pid.Map.iter
    (fun _ entries ->
      List.iter
        (fun (e : Ledger.entry) ->
          List.iter
            (fun tx ->
              Alcotest.(check int) "tx belongs to its slot" e.slot (tx / 100))
            (Value.to_list e.value))
        entries)
    r.ledgers

let test_with_silent_fault () =
  let r =
    Ledger.run ~slots:3
      ~system:(threshold_system 4 3)
      ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
      ~tx_pool
      ~fault_of:(fun i -> if i = 2 then Some Runner.Silent else None)
      ()
  in
  Alcotest.(check bool) "consistent despite fault" true r.consistent;
  Alcotest.(check bool) "complete despite fault" true r.complete;
  Alcotest.(check int) "three ledgers" 3 (Pid.Map.cardinal r.ledgers)

let test_cross_replica_equality () =
  let r =
    Ledger.run ~slots:4
      ~system:(threshold_system 5 4)
      ~peers_of:(fun _ -> Pid.Set.of_range 1 5)
      ~tx_pool
      ~fault_of:(fun _ -> None)
      ()
  in
  match Pid.Map.bindings r.ledgers with
  | [] -> Alcotest.fail "no ledgers"
  | (_, reference) :: rest ->
      List.iter
        (fun (pid, entries) ->
          List.iter2
            (fun (a : Ledger.entry) (b : Ledger.entry) ->
              Alcotest.(check bool)
                (Printf.sprintf "node %d slot %d equal" pid a.slot)
                true
                (Value.equal a.value b.value))
            reference entries)
        rest

let suites =
  [
    ( "ledger",
      [
        Alcotest.test_case "three slots fault-free" `Quick
          test_three_slots_fault_free;
        Alcotest.test_case "slots isolated" `Quick test_slots_isolated;
        Alcotest.test_case "silent fault across slots" `Quick
          test_with_silent_fault;
        Alcotest.test_case "cross-replica equality" `Quick
          test_cross_replica_equality;
      ] );
  ]
