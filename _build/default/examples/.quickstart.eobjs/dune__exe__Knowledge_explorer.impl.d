examples/knowledge_explorer.ml: Array Connectivity Digraph Dot Format Generators Graphkit List Pid Properties Scc Sys
