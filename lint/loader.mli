(** Typedtree loading for the [--cmt] phase.

    Walks a build directory for the [.cmt]/[.cmti] files dune already
    produces, reads them with [Cmt_format.read_cmt] (compiler-libs)
    and yields the typed implementation of every compilation unit
    plus the value names its [.mli] exports. *)

type unit_info = {
  modname : string;
      (** mangled compilation-unit name, e.g. ["Cup__Knowledge"] *)
  mod_comps : string list;
      (** canonical module path, e.g. [["Cup"; "Knowledge"]] *)
  source : string;
      (** build-relative source path, e.g. ["lib/cup/knowledge.ml"] —
          the path findings are reported under *)
  structure : Typedtree.structure;
}

type t = {
  units : unit_info list;
  exports : (string, string list) Hashtbl.t;
      (** modname -> value names of its typed interface *)
}

val load_dir : ?skip:(string -> bool) -> string -> t
(** [load_dir dir] loads every [.cmt]/[.cmti] below [dir] (in sorted
    order, deduplicated by unit name). [skip] filters on the unit's
    source path; generated alias modules ([.ml-gen]) are always
    skipped. Unreadable files are ignored. *)

val exported : t -> string -> string list
(** Exported value names of a unit; [[]] when it has no [.cmti]. *)

val split_comps : string -> string list
(** ["Cup__Knowledge"] -> [["Cup"; "Knowledge"]]; plain names pass
    through unchanged. *)

val canonical : string list -> string list
(** Split every component on ["__"] and drop a leading ["Stdlib"], so
    ["Stdlib.Hashtbl.t"], ["Stdlib__Hashtbl.t"] and ["Hashtbl.t"]
    compare equal. *)

val raw_comps : Path.t -> string list
(** The path's components as stored ([Papply]/extra nodes yield
    [[]]). *)

val path_comps : Path.t -> string list
(** [canonical (raw_comps p)]. *)
