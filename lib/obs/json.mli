(** A minimal JSON document type with deterministic serialization.

    Every consumer of the observability layer (JSONL trace sinks,
    metrics dumps, the CLI's [--json] outputs, the bench harness)
    serializes through this one writer, so identical values always
    produce identical bytes — the property the golden-trace tests and
    the CI determinism gate rely on. Object fields are emitted in the
    order given; no whitespace is inserted. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no spaces, no trailing newline). Floats are
    printed with ["%.12g"]; NaN and infinities are rendered as [null]
    (JSON has no lexeme for them). *)

val to_buffer : Buffer.t -> t -> unit

val escape : string -> string
(** The body of a JSON string literal (quotes not included). *)

val of_string : string -> (t, string) result
(** Parses one JSON document (the analysis daemon's request decoder).
    Restrictions, both irrelevant to protocol traffic: numbers without
    a fraction or exponent must fit in an OCaml [int], and [\u] escapes
    beyond ASCII are preserved as literal escape text rather than
    decoded. Trailing non-whitespace after the document is an error. *)
