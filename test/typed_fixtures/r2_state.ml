(* Toplevel mutable state for the R2 fixture: [R1_cases.via_module]
   routes parallel jobs into [bump], so the typed pass must flag
   [counter] as job-reachable. [limit] is immutable and must not be
   flagged. *)

let counter = ref 0

let limit = 100

let bump x =
  incr counter;
  x + !counter + limit
