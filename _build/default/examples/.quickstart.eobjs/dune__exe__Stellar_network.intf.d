examples/stellar_network.mli:
