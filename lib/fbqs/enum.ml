open Graphkit
module D = Pid.Dense_set

(* Branch-and-bound analysis engine over the dense bitset kernel.

   Everything here is built on one search primitive: enumerate the
   inclusion-minimal quorums of a compiled system by branching on
   "pid in / pid out" decisions, with two exact prunings.

   - Contraction. All quorums live inside the greatest quorum [W] of
     the full participant set, and every minimal quorum lies within a
     single strongly connected component of the trust graph restricted
     to [W] (a minimal quorum restricted to a sink SCC of its own
     induced trust graph is itself a quorum, so minimality forces the
     quorum into one SCC). Only SCCs that contain a quorum are
     searched; live-network topologies collapse to a top tier of a few
     dozen validators this way.

   - Viability bound. A branch (selection, available) can produce a
     quorum iff [selection ⊆ greatest_quorum_within available]: the
     union of all quorums inside [available] is itself a quorum
     (quorums are closed under union), so the test is exact, and the
     branch's candidate pool shrinks to that greatest quorum.

   Found quorums are confirmed minimal on the spot (dropping any single
   member must leave no quorum), so no superset bookkeeping or global
   minimisation pass is needed and enumeration can stream with early
   exit — which is what makes the quorum-intersection check on a
   n=200-validator topology answer in well under a second. *)

type stats = { explored : int; pruned : int; found : int }

type t = {
  compiled : Quorum.Compiled.t;
  sys : Quorum.system;
  parts : Pid.Set.t;
  fallback : bool;  (* negative pids: Pid.Set brute-force path *)
  mutable explored : int;
  mutable pruned : int;
  mutable found : int;
  mutable minimal : Pid.Set.t list option;  (* cache, canonical order *)
  c_explored : Obs.Metrics.counter option;
  c_pruned : Obs.Metrics.counter option;
  c_found : Obs.Metrics.counter option;
}

let has_negative sys =
  (match Pid.Map.min_binding_opt sys with
  | Some (k, _) -> k < 0
  | None -> false)
  || Pid.Map.exists
       (fun _ s ->
         match Pid.Set.min_elt_opt (Slice.domain s) with
         | Some m -> m < 0
         | None -> false)
       sys

let prepare ?metrics sys =
  let counter name =
    Option.map (fun m -> Obs.Metrics.counter m name) metrics
  in
  {
    compiled = Quorum.compiled_of sys;
    sys;
    parts = Quorum.participants sys;
    fallback = has_negative sys;
    explored = 0;
    pruned = 0;
    found = 0;
    minimal = None;
    c_explored = counter "fbqs_enum_explored";
    c_pruned = counter "fbqs_enum_pruned";
    c_found = counter "fbqs_enum_quorums_found";
  }

let system t = t.sys
let stats t = { explored = t.explored; pruned = t.pruned; found = t.found }

let tick_explored t =
  t.explored <- t.explored + 1;
  Option.iter (fun c -> Obs.Metrics.incr c) t.c_explored

let tick_pruned t =
  t.pruned <- t.pruned + 1;
  Option.iter (fun c -> Obs.Metrics.incr c) t.c_pruned

let tick_found t =
  t.found <- t.found + 1;
  Option.iter (fun c -> Obs.Metrics.incr c) t.c_found

(* ---- the search primitive -------------------------------------------- *)

exception Stop

(* Depth-first enumeration of the minimal quorums inside [universe]
   (already contracted to a greatest quorum). [emit] returns [false] to
   abort the traversal. Candidates branch in ascending pid order, so
   the emission order — and with it every downstream report — is
   deterministic. *)
let explore t ~universe emit =
  let c = t.compiled in
  let minimal_quorum q =
    D.for_all
      (fun v -> not (Quorum.Compiled.contains_quorum_d c (D.remove v q)))
      q
  in
  let rec go selection remaining available =
    tick_explored t;
    if Quorum.Compiled.is_quorum_d c selection then begin
      (* Supersets of a quorum cannot be minimal: stop descending. *)
      if minimal_quorum selection then begin
        tick_found t;
        if not (emit selection) then raise Stop
      end
    end
    else
      match remaining with
      | [] -> ()
      | v :: rest ->
          go (D.add v selection) rest available;
          let available = D.remove v available in
          let gq = Quorum.Compiled.greatest_quorum_within_d c available in
          if D.subset selection gq then
            go selection (List.filter (fun u -> D.mem u gq) rest) gq
          else tick_pruned t
  in
  go D.empty (D.elements universe) universe

(* The SCCs of the trust graph restricted to the greatest quorum, kept
   only when they contain a quorum — the contraction step. Returns
   each component already shrunk to its own greatest quorum. *)
let quorum_sccs t =
  let c = t.compiled in
  let w = Quorum.Compiled.greatest_quorum_within_d c (D.of_set t.parts) in
  if D.is_empty w then []
  else begin
    let g =
      D.fold
        (fun i g ->
          let dom = Slice.domain (Quorum.slices_of t.sys i) in
          Pid.Set.fold
            (fun j g -> if D.mem j w then Digraph.add_edge i j g else g)
            dom
            (Digraph.add_vertex i g))
        w Digraph.empty
    in
    List.filter_map
      (fun scc ->
        let gq = Quorum.Compiled.greatest_quorum_within_d c (D.of_set scc) in
        if D.is_empty gq then None else Some gq)
      (Scc.components g)
  end

let canonical sets =
  List.sort
    (fun a b ->
      match Int.compare (Pid.Set.cardinal a) (Pid.Set.cardinal b) with
      | 0 -> Pid.Set.compare a b
      | c -> c)
    sets

(* ---- parallel sharding ------------------------------------------------ *)

(* The search trees shard for {!Simkit.Exec.map}: the DFS above a
   fixed frontier depth runs in the caller — ticking the analyzer
   exactly as the sequential walk does — and each call that would
   cross the frontier is captured (its exact [go] arguments) instead
   of descending. Subtrees are independent, results merge through
   {!canonical} (order-independent) and tick deltas are summed back
   afterwards, so output and stats are byte-identical to the
   sequential run at every [jobs] count. Shards are dense-set/int
   data and the job closures capture only the compiled system (bitset
   arrays and slice maps — plain data), so they survive the fork
   backend's closure [Marshal] unchanged; the compiled handle's own
   query tallies are the only shared mutable state jobs touch, and
   nothing downstream reads them. *)

let default_frontier_depth = 5

type tick_delta = { d_explored : int; d_pruned : int; d_found : int }

let apply_delta t d =
  let bump counter by =
    match counter with
    | Some c when by > 0 -> Obs.Metrics.incr ~by c
    | _ -> ()
  in
  t.explored <- t.explored + d.d_explored;
  bump t.c_explored d.d_explored;
  t.pruned <- t.pruned + d.d_pruned;
  bump t.c_pruned d.d_pruned;
  t.found <- t.found + d.d_found;
  bump t.c_found d.d_found

(* ---- minimal quorums -------------------------------------------------- *)

type mq_shard = { mq_sel : D.t; mq_rem : Pid.t list; mq_avail : D.t }

(* The prefix of [explore]'s DFS above the frontier: same branching,
   same pruning, same ticks on [t]. Quorums found above the frontier
   come back alongside the deferred frontier calls. *)
let mq_cut t ~universe =
  let c = t.compiled in
  let minimal_quorum q =
    D.for_all
      (fun v -> not (Quorum.Compiled.contains_quorum_d c (D.remove v q)))
      q
  in
  let shards = ref [] and above = ref [] in
  let rec go depth selection remaining available =
    if depth >= default_frontier_depth then
      shards :=
        { mq_sel = selection; mq_rem = remaining; mq_avail = available }
        :: !shards
    else begin
      tick_explored t;
      if Quorum.Compiled.is_quorum_d c selection then begin
        if minimal_quorum selection then begin
          tick_found t;
          above := D.to_set selection :: !above
        end
      end
      else
        match remaining with
        | [] -> ()
        | v :: rest ->
            go (depth + 1) (D.add v selection) rest available;
            let available = D.remove v available in
            let gq = Quorum.Compiled.greatest_quorum_within_d c available in
            if D.subset selection gq then
              go (depth + 1) selection
                (List.filter (fun u -> D.mem u gq) rest)
                gq
            else tick_pruned t
    end
  in
  go 0 D.empty (D.elements universe) universe;
  (List.rev !shards, !above)

(* One deferred subtree, recursed to the bottom with local counters —
   the body of [explore], minus the shared analyzer state. *)
let mq_run c sh =
  let explored = ref 0 and pruned = ref 0 and found = ref 0 in
  let acc = ref [] in
  let minimal_quorum q =
    D.for_all
      (fun v -> not (Quorum.Compiled.contains_quorum_d c (D.remove v q)))
      q
  in
  let rec go selection remaining available =
    incr explored;
    if Quorum.Compiled.is_quorum_d c selection then begin
      if minimal_quorum selection then begin
        incr found;
        acc := D.to_set selection :: !acc
      end
    end
    else
      match remaining with
      | [] -> ()
      | v :: rest ->
          go (D.add v selection) rest available;
          let available = D.remove v available in
          let gq = Quorum.Compiled.greatest_quorum_within_d c available in
          if D.subset selection gq then
            go selection (List.filter (fun u -> D.mem u gq) rest) gq
          else incr pruned
  in
  go sh.mq_sel sh.mq_rem sh.mq_avail;
  (!acc, { d_explored = !explored; d_pruned = !pruned; d_found = !found })

let minimal_quorums_sharded ~jobs t =
  let c = t.compiled in
  let acc = ref [] in
  let shards =
    List.concat_map
      (fun universe ->
        let shards, above = mq_cut t ~universe in
        acc := List.rev_append above !acc;
        shards)
      (quorum_sccs t)
  in
  List.iter
    (fun (sets, delta) ->
      acc := List.rev_append sets !acc;
      apply_delta t delta)
    (Simkit.Exec.map ~jobs (mq_run c) shards);
  canonical !acc

let minimal_quorums ?(jobs = 1) t =
  match t.minimal with
  | Some q -> q
  | None ->
      let result =
        if t.fallback then canonical (Quorum.minimal_quorums t.sys)
        else if jobs > 1 then minimal_quorums_sharded ~jobs t
        else begin
          let acc = ref [] in
          List.iter
            (fun universe ->
              explore t ~universe (fun q ->
                  acc := D.to_set q :: !acc;
                  true))
            (quorum_sccs t);
          canonical !acc
        end
      in
      t.minimal <- Some result;
      result

let top_tier ?jobs t =
  List.fold_left Pid.Set.union Pid.Set.empty (minimal_quorums ?jobs t)

(* ---- quorum intersection ---------------------------------------------- *)

type intersection = Intersects | Disjoint of Pid.Set.t * Pid.Set.t

let complement_witness t q =
  let partner =
    Quorum.Compiled.greatest_quorum_within_d t.compiled
      (D.diff (D.of_set t.parts) (D.of_set q))
  in
  if D.is_empty partner then None else Some (q, D.to_set partner)

let check_intersection ?jobs t =
  if t.fallback then begin
    (* Negative pids: minimal quorums via the enumeration reference,
       then a pairwise scan (tiny systems only — the reference is
       guarded to 20 participants). *)
    let quorums = minimal_quorums t in
    let rec scan = function
      | [] -> Intersects
      | q :: rest -> (
          match List.find_opt (Pid.Set.disjoint q) rest with
          | Some q' -> Disjoint (q, q')
          | None -> scan rest)
    in
    scan quorums
  end
  else
    match t.minimal with
    | Some quorums -> (
        (* Enumeration already ran: one complement check per cached
           minimal quorum, no new search. *)
        match List.find_map (complement_witness t) quorums with
        | Some (q, q') -> Disjoint (q, q')
        | None -> Intersects)
    | None -> (
        match quorum_sccs t with
        | [] -> Intersects (* no quorums at all: vacuously true *)
        | s1 :: s2 :: _ ->
            (* Two disjoint SCCs each containing a quorum: their
               greatest quorums are disjoint witnesses, no search
               needed. *)
            Disjoint (D.to_set s1, D.to_set s2)
        | [ _ ] -> (
            (* Any two disjoint quorums can be shrunk so one is
               minimal, so it suffices to test, per minimal quorum,
               whether its complement still contains a quorum.
               Enumeration runs to completion (filling the cache) at
               every [jobs] count, so the result — witness choice
               included — and the tick totals never depend on the
               degree of parallelism. *)
            let quorums = minimal_quorums ?jobs t in
            match List.find_map (complement_witness t) quorums with
            | Some (q, q') -> Disjoint (q, q')
            | None -> Intersects))

let quorum_intersection ?metrics ?jobs sys =
  check_intersection ?jobs (prepare ?metrics sys)

let quorum_intersection_despite ?metrics ?jobs sys b =
  match quorum_intersection ?metrics ?jobs (Quorum.delete sys b) with
  | Intersects -> true
  | Disjoint _ -> false

(* ---- minimal blocking sets -------------------------------------------- *)

type blocking = { sets : Pid.Set.t list; complete : bool }

(* Availability is judged on the original system (Mazières), so a set
   blocks the whole system iff it hits every quorum — equivalently
   every minimal quorum. Minimal blocking sets are then the minimal
   hitting sets of the minimal-quorum family, enumerated by branching
   on the members of an uncovered quorum with the usual
   "exclude-previous-branches" discipline (each hitting set is reached
   exactly once). *)

(* each member must be the sole hitter of some quorum *)
let bk_minimal quorums chosen =
  D.for_all
    (fun b ->
      Array.exists
        (fun q -> D.mem b q && D.inter_cardinal q chosen = 1)
        quorums)
    chosen

(* branch on the uncovered quorum with the fewest usable members;
   first such quorum wins ties (deterministic) *)
let bk_best uncovered excluded =
  List.fold_left
    (fun best q ->
      let usable = D.diff q excluded in
      let c = D.cardinal usable in
      match best with
      | Some (_, bc) when bc <= c -> best
      | _ -> Some (usable, c))
    None uncovered

type bk_shard = {
  bk_chosen : D.t;
  bk_uncovered : D.t list;
  bk_excluded : D.t;
}

(* The hitting-set tree branches much wider than the quorum search
   (one child per usable member of the pivot quorum), so its frontier
   sits shallower. *)
let blocking_frontier_depth = 3

let bk_cut t quorums =
  let shards = ref [] and above = ref [] in
  let rec go depth chosen uncovered excluded =
    if depth >= blocking_frontier_depth then
      shards :=
        { bk_chosen = chosen; bk_uncovered = uncovered; bk_excluded = excluded }
        :: !shards
    else begin
      tick_explored t;
      match uncovered with
      | [] ->
          if bk_minimal quorums chosen then
            above := D.to_set chosen :: !above
      | _ ->
          let usable, card = Option.get (bk_best uncovered excluded) in
          if card = 0 then tick_pruned t
          else
            ignore
              (D.fold
                 (fun v excluded ->
                   go (depth + 1) (D.add v chosen)
                     (List.filter (fun q -> not (D.mem v q)) uncovered)
                     excluded;
                   D.add v excluded)
                 usable excluded)
    end
  in
  go 0 D.empty (Array.to_list quorums) D.empty;
  (List.rev !shards, !above)

let bk_run quorums sh =
  let explored = ref 0 and pruned = ref 0 in
  let results = ref [] in
  let rec go chosen uncovered excluded =
    incr explored;
    match uncovered with
    | [] ->
        if bk_minimal quorums chosen then
          results := D.to_set chosen :: !results
    | _ ->
        let usable, card = Option.get (bk_best uncovered excluded) in
        if card = 0 then incr pruned
        else
          ignore
            (D.fold
               (fun v excluded ->
                 go (D.add v chosen)
                   (List.filter (fun q -> not (D.mem v q)) uncovered)
                   excluded;
                 D.add v excluded)
               usable excluded)
  in
  go sh.bk_chosen sh.bk_uncovered sh.bk_excluded;
  (!results, { d_explored = !explored; d_pruned = !pruned; d_found = 0 })

let minimal_blocking_sets ?(limit = max_int) ?(jobs = 1) t =
  let quorums =
    List.map D.of_set (minimal_quorums ~jobs t) |> Array.of_list
  in
  if Array.length quorums = 0 then { sets = []; complete = true }
  else if jobs > 1 && limit = max_int then begin
    (* Unlimited enumeration is order-independent, so subtrees below
       the frontier shard out like the quorum search. A finite [limit]
       keeps the sequential path: truncation depends on discovery
       order, which sharding does not preserve. *)
    let shards, above = bk_cut t quorums in
    let acc = ref above in
    List.iter
      (fun (sets, delta) ->
        acc := List.rev_append sets !acc;
        apply_delta t delta)
      (Simkit.Exec.map ~jobs (bk_run quorums) shards);
    { sets = canonical !acc; complete = true }
  end
  else begin
    let results = ref [] and count = ref 0 and complete = ref true in
    let rec go chosen uncovered excluded =
      tick_explored t;
      match uncovered with
      | [] ->
          if bk_minimal quorums chosen then begin
            results := D.to_set chosen :: !results;
            incr count;
            if !count >= limit then begin
              complete := false;
              raise Stop
            end
          end
      | _ ->
          let usable, card = Option.get (bk_best uncovered excluded) in
          if card = 0 then tick_pruned t
          else
            ignore
              (D.fold
                 (fun v excluded ->
                   go (D.add v chosen)
                     (List.filter (fun q -> not (D.mem v q)) uncovered)
                     excluded;
                   D.add v excluded)
                 usable excluded)
    in
    (try go D.empty (Array.to_list quorums) D.empty with Stop -> ());
    { sets = canonical !results; complete = !complete }
  end

(* ---- minimal splitting sets -------------------------------------------- *)

(* Deletion is not monotone (deleting everything leaves a vacuously
   intersecting system), so splitting sets are found by exhaustive
   cardinality-ordered sweep over the candidate universe, with
   supersets of already-found splitting sets skipped: when candidates
   are visited in increasing size, a splitting set containing no
   smaller splitting set is inclusion-minimal, exactly. The universe
   defaults to the top tier — the sweep is exponential in its size, so
   [max_size] bounds the sweep for live-scale use. *)
let next_same_popcount c =
  let lo = c land -c in
  let ripple = c + lo in
  ripple lor (((c lxor ripple) lsr 2) / lo)

let minimal_splitting_sets ?metrics ?universe ?max_size ?(jobs = 1) t =
  let universe =
    match universe with Some u -> u | None -> top_tier ~jobs t
  in
  let elts = Array.of_list (Pid.Set.elements universe) in
  let n = Array.length elts in
  if n > 62 then
    invalid_arg "Enum.minimal_splitting_sets: universe larger than 62";
  let max_size = min (Option.value ~default:n max_size) n in
  let set_of_mask mask =
    let s = ref Pid.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Pid.Set.add elts.(i) !s
    done;
    !s
  in
  (* Candidate checks run metrics-free — a live registry is shared
     mutable state no parallel job may touch — and return their tick
     counts instead; the caller replays the deltas into [metrics] in
     candidate order, so the counters come out identical to a
     sequential sweep at every [jobs] count. *)
  let counters =
    Option.map
      (fun m ->
        ( Obs.Metrics.counter m "fbqs_enum_explored",
          Obs.Metrics.counter m "fbqs_enum_pruned",
          Obs.Metrics.counter m "fbqs_enum_quorums_found" ))
      metrics
  in
  let replay (st : stats) =
    match counters with
    | None -> ()
    | Some (ce, cp, cf) ->
        if st.explored > 0 then Obs.Metrics.incr ~by:st.explored ce;
        if st.pruned > 0 then Obs.Metrics.incr ~by:st.pruned cp;
        if st.found > 0 then Obs.Metrics.incr ~by:st.found cf
  in
  let sys = t.sys in
  let splits_checked b =
    let t' = prepare (Quorum.delete sys b) in
    let hit =
      match check_intersection t' with
      | Intersects -> false
      | Disjoint _ -> true
    in
    (hit, stats t')
  in
  let hit0, st0 = splits_checked Pid.Set.empty in
  replay st0;
  if hit0 then [ Pid.Set.empty ]
  else begin
    let found_masks = ref [] and found = ref [] in
    let k = ref 1 in
    while !k <= max_size do
      (* A size-k mask can only be a superset of a strictly smaller
         found mask (an equal-size superset is equality, and each mask
         is visited once), so the whole cardinality layer filters
         against the previous layers' finds and its candidates are
         independent — they evaluate in parallel, with hits appended
         in ascending mask order. *)
      let candidates = ref [] in
      let mask = ref ((1 lsl !k) - 1) in
      let limit = 1 lsl n in
      while !mask < limit do
        let m = !mask in
        if not (List.exists (fun f -> m land f = f) !found_masks) then
          candidates := m :: !candidates;
        mask := next_same_popcount m
      done;
      List.iter
        (fun (m, hit, st) ->
          replay st;
          if hit then begin
            found_masks := m :: !found_masks;
            found := set_of_mask m :: !found
          end)
        (Simkit.Exec.map ~jobs
           (fun m ->
             let hit, st = splits_checked (set_of_mask m) in
             (m, hit, st))
           (List.rev !candidates));
      incr k
    done;
    canonical !found
  end
