open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

(* The Section III-D running example on the Fig. 1 graph. *)
let fig1_system =
  Quorum.system_of_list
    (List.map
       (fun (i, slices) -> (i, Slice.explicit slices))
       Graphkit.Builtin.fig1_slices)

let test_fig1_quorums_from_paper () =
  (* "1's quorum is the area with horizontal lines": {1,2,4,5,6,7}. *)
  Alcotest.(check bool) "quorum of 1" true
    (Quorum.is_quorum_of fig1_system 1 (set [ 1; 2; 4; 5; 6; 7 ]));
  (* "3's quorum is the area with vertical lines": {3,5,6,7}. *)
  Alcotest.(check bool) "quorum of 3" true
    (Quorum.is_quorum_of fig1_system 3 (set [ 3; 5; 6; 7 ]));
  (* "Q_5 = Q_6 = Q_7 = {5,6,7} — the area with squares". *)
  Alcotest.(check bool) "core quorum" true
    (Quorum.is_quorum fig1_system (set [ 5; 6; 7 ]));
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "{5,6,7} is a quorum of %d" i)
        true
        (Quorum.is_quorum_of fig1_system i (set [ 5; 6; 7 ])))
    [ 5; 6; 7 ]

let test_fig1_non_quorums () =
  (* 2 requires 4, so a set with 2 but without 4 is no quorum. *)
  Alcotest.(check bool) "missing dependency" false
    (Quorum.is_quorum fig1_system (set [ 1; 2; 5; 6; 7 ]));
  (* 8 declared no slices, so any set containing 8 fails Algorithm 1. *)
  Alcotest.(check bool) "byzantine member breaks the check" false
    (Quorum.is_quorum fig1_system (set [ 5; 6; 7; 8 ]));
  Alcotest.(check bool) "empty set" false
    (Quorum.is_quorum fig1_system Pid.Set.empty)

let test_greatest_quorum () =
  let w = Pid.Set.of_range 1 7 in
  Alcotest.check pid_set "W itself is the greatest quorum in W" w
    (Quorum.greatest_quorum_within fig1_system w);
  (* Inside {1,2,5,6,7}: 1 needs {2,5}, 2 needs 4 (absent) so 2 falls,
     then 1 falls; {5,6,7} survives. *)
  Alcotest.check pid_set "pruning cascade"
    (set [ 5; 6; 7 ])
    (Quorum.greatest_quorum_within fig1_system (set [ 1; 2; 5; 6; 7 ]));
  Alcotest.check pid_set "no quorum inside {1,2}" Pid.Set.empty
    (Quorum.greatest_quorum_within fig1_system (set [ 1; 2 ]))

let test_minimal_quorums_of () =
  let minimal = Quorum.minimal_quorums_of fig1_system 3 in
  Alcotest.(check int) "exactly one minimal quorum of 3" 1
    (List.length minimal);
  Alcotest.check pid_set "it is {3,5,6,7}" (set [ 3; 5; 6; 7 ])
    (List.hd minimal);
  let minimal1 = Quorum.minimal_quorums_of fig1_system 1 in
  Alcotest.(check int) "exactly one minimal quorum of 1" 1
    (List.length minimal1);
  Alcotest.check pid_set "it is {1,2,4,5,6,7}" (set [ 1; 2; 4; 5; 6; 7 ])
    (List.hd minimal1)

let test_v_blocking () =
  (* 4's slices are {5,6} and {6,8}: {6} meets both. *)
  Alcotest.(check bool) "{6} blocks 4" true
    (Quorum.is_v_blocking fig1_system 4 (set [ 6 ]));
  Alcotest.(check bool) "{5} does not block 4" false
    (Quorum.is_v_blocking fig1_system 4 (set [ 5 ]));
  Alcotest.(check bool) "{5,8} blocks 4" true
    (Quorum.is_v_blocking fig1_system 4 (set [ 5; 8 ]));
  Alcotest.(check bool) "nothing blocks a sliceless process" false
    (Quorum.is_v_blocking fig1_system 8 (set [ 5; 6; 7 ]))

let test_threshold_system () =
  (* A classic 3f+1 threshold system is an FBQS whose quorums are the
     sets of >= 2f+1 members. *)
  let n = 4 and f = 1 in
  let members = Pid.Set.of_range 1 n in
  let sys =
    Quorum.system_of_list
      (List.map
         (fun i -> (i, Slice.threshold ~members ~threshold:((2 * f) + 1)))
         (Pid.Set.elements members))
  in
  Alcotest.(check bool) "any 3 of 4" true (Quorum.is_quorum sys (set [ 1; 2; 4 ]));
  Alcotest.(check bool) "2 of 4 is not" false (Quorum.is_quorum sys (set [ 1; 2 ]));
  Alcotest.(check int) "four minimal quorums" 4
    (List.length (Quorum.minimal_quorums sys))

(* Properties on random explicit systems: quorums are closed under
   union, and the greatest quorum within a universe is the union of all
   quorums inside it. *)
let arb_system =
  QCheck.make
    ~print:(fun sys ->
      Format.asprintf "%a"
        (Pid.Map.pp Slice.pp)
        sys)
    QCheck.Gen.(
      let n = 5 in
      let* per_process =
        list_repeat n
          (list_size (int_range 1 3)
             (list_size (int_range 1 3) (int_range 1 n)))
      in
      return
        (Quorum.system_of_list
           (List.mapi
              (fun i slices ->
                ( i + 1,
                  Slice.explicit (List.map Pid.Set.of_list slices) ))
              per_process)))

let prop_union_of_quorums =
  QCheck.Test.make ~count:200 ~name:"union of quorums is a quorum" arb_system
    (fun sys ->
      let quorums = Quorum.enum_quorums sys in
      List.for_all
        (fun q1 ->
          List.for_all
            (fun q2 -> Quorum.is_quorum sys (Pid.Set.union q1 q2))
            quorums)
        (match quorums with [] -> [] | q :: _ -> [ q ]))

let prop_greatest_is_quorum_or_empty =
  QCheck.Test.make ~count:200 ~name:"greatest quorum is a quorum or empty"
    arb_system (fun sys ->
      let u = Quorum.greatest_quorum_within sys (Pid.Set.of_range 1 5) in
      Pid.Set.is_empty u || Quorum.is_quorum sys u)

let prop_greatest_contains_all_quorums =
  QCheck.Test.make ~count:200 ~name:"greatest quorum contains every quorum"
    arb_system (fun sys ->
      let universe = Pid.Set.of_range 1 5 in
      let u = Quorum.greatest_quorum_within sys universe in
      List.for_all
        (fun q -> Pid.Set.subset q u)
        (Quorum.enum_quorums ~universe sys))

let suites =
  [
    ( "quorum",
      [
        Alcotest.test_case "fig1 quorums from the paper" `Quick
          test_fig1_quorums_from_paper;
        Alcotest.test_case "fig1 non-quorums" `Quick test_fig1_non_quorums;
        Alcotest.test_case "greatest quorum" `Quick test_greatest_quorum;
        Alcotest.test_case "minimal quorums" `Quick test_minimal_quorums_of;
        Alcotest.test_case "v-blocking" `Quick test_v_blocking;
        Alcotest.test_case "threshold (PBFT-like) system" `Quick
          test_threshold_system;
        QCheck_alcotest.to_alcotest prop_union_of_quorums;
        QCheck_alcotest.to_alcotest prop_greatest_is_quorum_or_empty;
        QCheck_alcotest.to_alcotest prop_greatest_contains_all_quorums;
      ] );
  ]
