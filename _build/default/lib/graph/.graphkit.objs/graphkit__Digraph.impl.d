lib/graph/digraph.ml: Format List Option Pid
