lib/graph/digraph.mli: Format Pid
