(** The parallel map executor behind every [--jobs] flag.

    Two backends, one contract. On OCaml 5 a {b domain pool} spawns
    [jobs] domains that pull chunks of job indices from a
    mutex-protected counter and write results straight into a
    preallocated slot array — shared heap, zero serialization. On 4.14
    (or wherever domains are unavailable) the {b fork pool} of
    {!Pool.map_chunked} takes over: the same chunked dynamic dispatch,
    with results marshalled up a pipe per chunk. The backend is picked
    at build time by a dune rule (see [lib/sim/dune]): [exec_domains.ml]
    is either the real domain pool or a stub that reports itself
    unavailable.

    The contract, identical at every [jobs] count and on both
    backends: [map ~jobs f xs = List.map f xs], byte for byte.
    Jobs must be independent pure-ish functions (each experiment
    sample builds its own engine, metrics registry and trace buffer);
    the executor adds parallelism as a pure wall-clock optimisation,
    never a semantic knob. Determinism of the error path: if jobs
    fail, the exception text of the {e minimum-index} failing job is
    the one re-raised, on both backends (chunk claiming is monotonic,
    so that job was always attempted).

    Shared state: the {!Core.Cache} handle memos (compiled quorum
    systems, CSR graphs) are reachable from jobs. Their values are
    pure functions of their keys and their internal lazy fields are
    written idempotently, so races stay output-deterministic; the
    executor additionally arms {!Core.Cache.set_protector} with the
    backend's lock before the first domain spawn so the cache's
    bookkeeping moves atomically. That lock lives in the
    version-switched backend (identity on 4.14, where [Mutex] is not
    even in the stdlib) — parallelism primitives stay behind this
    seam (enforced by stellar-lint rule D6). *)

exception Job_failed of string
(** The same exception as {!Pool.Job_failed} (rebound, so either name
    catches it): a job raised (payload: exception text plus backtrace),
    or a fork worker died before reporting. Raised only after every
    worker has been joined/reaped. *)

type backend = Domains | Fork | Sequential

val domains_available : bool
(** Whether this binary was built with the domain backend (OCaml 5). *)

val fork_available : bool
(** Whether [Unix.fork] exists on this platform. *)

val backend : jobs:int -> int -> backend
(** [backend ~jobs n] — the backend {!map} would pick for [n] jobs:
    [Sequential] when [jobs <= 1] or [n <= 1], else domains when
    available, else fork, else sequential. Exposed so callers (CLI,
    bench) can report the execution mode. *)

val backend_name : backend -> string
(** ["domains"], ["fork"] or ["sequential"]. *)

val run_in_parallel : jobs:int -> int -> bool
(** Whether {!map} would actually run workers (i.e. {!backend} is not
    [Sequential]). Drop-in for {!Pool.run_in_parallel}. *)

val map :
  ?backend:backend -> ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] on every element of [xs] with up to
    [jobs] workers and returns the results in input order —
    byte-identical to [List.map f xs].

    [?backend] forces a specific backend (tests use it to exercise the
    fork path on OCaml 5); [jobs <= 1] and singleton/empty inputs run
    sequentially regardless. [?chunk] overrides the dispatch chunk
    size (results are invariant under it; it only moves the
    throughput/balance trade-off).

    On the fork backend results travel by [Marshal], so ['b] must be
    marshal-safe plain data there; the domain backend has no such
    restriction (results never leave the heap). Inputs and [f] are
    never serialized on the domain backend; the warm fork pool ships
    the job by closure [Marshal] when it can, silently reverting to a
    per-call fork (plain inheritance) when the captures are not
    marshal-safe — results are byte-identical either way.

    Both backends keep their workers alive between calls (see
    {!Pool}): the first parallel [map] pays the spawn cost, later ones
    only dispatch.

    @raise Job_failed if any job raises (minimum-index failure wins),
    after all workers are collected.
    @raise Invalid_argument if a forced backend is unavailable. *)

(** {1 The persistent worker pool} *)

(** Lifecycle and occupancy of the process-wide worker pool behind
    {!map} — parked domains on OCaml 5, parked fork workers on 4.14
    (whichever backend is live; the other side reports zero). *)
module Pool : sig
  val shutdown : unit -> unit
  (** Tears the live pool down (joins domains / EOFs+reaps fork
      workers). Idempotent; the next parallel {!map} respawns lazily.
      Registered [at_exit] on first spawn, so explicit calls are only
      needed to reclaim workers mid-process. *)

  val size : unit -> int
  (** Workers currently parked (the submitting caller is not one). *)

  val peak : unit -> int
  (** High-water mark of {!size} over the process lifetime. *)

  val batches : unit -> int
  (** Parallel map batches executed so far (including batches the
      1-core domain cap ran inline). *)
end

val jobs_env_var : string
(** ["STELLAR_CUP_JOBS"] — the environment default behind every
    [--jobs] flag (CLI, bench, daemon). An explicit flag always
    wins. *)

val jobs_from_env : unit -> int option
(** The parsed {!jobs_env_var} value: [Some j] for a positive integer,
    [None] when unset, empty or malformed. *)

(** {1 Detached tasks and shared-state protection} *)

val protect : (unit -> 'a) -> 'a
(** Runs the thunk inside the executor's global critical section (the
    same lock {!Core.Cache} is armed with). The only sanctioned
    mutual-exclusion seam outside [lib/sim] (stellar-lint D6): the
    daemon guards its connection counters with it. Identity on 4.14,
    where nothing runs concurrently. *)

type task
(** A detached unit of work — the daemon's per-client connection
    handlers. On OCaml 5 it runs on its own domain (not a pool seat:
    these are IO-bound); on 4.14 {!spawn_task} runs it inline before
    returning, so call sites degrade to sequential behaviour with no
    further casing. *)

val spawn_task : (unit -> unit) -> task
val join_task : task -> unit

val concurrent_tasks : bool
(** Whether {!spawn_task} actually runs tasks concurrently
    ([domains_available]). *)
