(** Wire messages of the CUP protocol suite (knowledge discovery,
    reachable-reliable broadcast, sink replies). *)

open Graphkit

type t =
  | Know_request
      (** "Tell me your current known set, and keep me posted." *)
  | Know of Pid.Set.t
      (** The sender's current known set; re-sent to subscribers on
          every change, so the last received copy is the sender's
          current view. Doubles as the SINK confirmation echo. *)
  | Get_sink of { origin : Pid.t; path : Pid.t list }
      (** The reachable-reliable broadcast flood for Algorithm 3's
          GET_SINK. [path] lists the relay chain starting at [origin];
          honest relayers append themselves, and receivers reject
          copies whose last element is not the physical sender. *)
  | Sink_reply of Pid.Set.t
      (** A sink member's answer to a GET_SINK request. *)

val pp : Format.formatter -> t -> unit

val size : t -> int
(** Approximate wire size in "id units", for traffic accounting. *)
