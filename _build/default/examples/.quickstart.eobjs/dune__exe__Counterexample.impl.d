examples/counterexample.ml: Builtin Cup Digraph Format Graphkit Pid Properties Scp Simkit Stellar_cup
