(** The analysis/run surface shared by the CLI and the analysis daemon.

    Both front ends answer the same questions over the same engines
    ({!Fbqs.Enum}, {!Stellar_cup.Pipeline}); this module holds the
    result assembly exactly once so that identical inputs produce
    byte-identical JSON payloads whichever front end served them. The
    payloads here are envelope-free: the CLI wraps them in a
    {!Core.Report} envelope of kind ["run"]/["sweep"]/["fbas-analysis"],
    the daemon in a ["response"] envelope carrying the request id. See
    DESIGN.md §14. *)

open Graphkit

(** {1 Graph selection} *)

type graph_spec = {
  kind : string;
      (** [fig1], [fig2], [family], [random], or [file:PATH] *)
  seed : int;
  sink_size : int;
  non_sink : int;
  f : int;
}

val default_graph_spec : graph_spec
(** [fig2], seed 1, sink size 5, 4 non-sink members, f = 1 — the CLI's
    historical flag defaults. *)

val build_graph : graph_spec -> Digraph.t
(** @raise Failure on an unknown kind or an unreadable [file:] path. *)

(** {1 Consensus runs} *)

val stack_of_pipeline : string -> Stellar_cup.Pipeline.stack
(** [scp-local], [scp-sd] or [bftcup].
    @raise Failure otherwise. *)

val run_consensus :
  cfg:Simkit.Run_config.t ->
  pipeline:string ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  unit ->
  Stellar_cup.Pipeline.verdict
(** One end-to-end run of the named stack, each process proposing the
    singleton value of its own id (the CLI convention). *)

val verdict_json : Stellar_cup.Pipeline.verdict -> Obs.Json.t

val run_payload :
  pipeline:string ->
  seed:int ->
  extra:(string * Obs.Json.t) list ->
  Stellar_cup.Pipeline.verdict ->
  Obs.Json.t
(** The single-run payload: pipeline, seed, verdict, then [extra]
    (metrics dump, trace-file pointer). *)

val sweep_payload :
  pipeline:string ->
  samples:int ->
  jobs:int ->
  (int * Stellar_cup.Pipeline.verdict) list ->
  Obs.Json.t
(** The multi-seed sweep payload: per-seed verdicts plus the
    [all_consensus] conjunction. *)

(** {1 FBQS analysis} *)

type analysis_options = {
  despite : int list list;
      (** node sets to check quorum intersection despite deleting *)
  blocking : bool;  (** also enumerate minimal blocking sets *)
  splitting : bool;  (** also enumerate minimal splitting sets *)
  max_size : int option;  (** splitting-sweep candidate-size bound *)
  cap : int;  (** sets listed per family in reports (counts stay exact) *)
  metrics : bool;  (** collect a fresh per-analysis metrics registry *)
  jobs : int;
      (** parallel workers for the Enum searches — wall-clock only,
          the payload is byte-identical at every jobs count and never
          mentions it *)
}

val default_analysis_options : analysis_options
(** No extras, cap 64, no metrics, jobs 1 — the CLI's flag
    defaults. *)

type analysis = {
  participants : Pid.Set.t;
  minimal_quorums : Pid.Set.t list;
  top_tier : Pid.Set.t;
  intersection : Fbqs.Enum.intersection;
  blocking_sets : Fbqs.Enum.blocking option;
  splitting_sets : Pid.Set.t list option;
  despite_checks : (Pid.Set.t * bool) list;
  search : Fbqs.Enum.stats;
  registry : Obs.Metrics.t option;  (** present iff [metrics] was set *)
}

val analyze : analysis_options -> Fbqs.Quorum.system -> analysis
(** Runs the {!Fbqs.Enum} analyzer on a fresh [Enum.t]. The compiled
    handle comes from the shared {!Fbqs.Quorum.compiled_of} cache, so
    repeated analyses of one system value compile once. *)

val analysis_payload : analysis_options -> analysis -> Obs.Json.t
(** The [fbas analyze --json] payload object (byte-identical to the
    pre-envelope CLI output). *)

(** {1 JSON helpers} *)

val pid_set_json : Pid.Set.t -> Obs.Json.t
(** Ascending list of ints. *)

val set_family_json :
  ?cap:int -> Pid.Set.t list -> (string * Obs.Json.t) list
(** count / size_min / size_max / listed / sets, listing at most [cap]
    sets (default: all). *)
