examples/ledger.ml: Cup Digraph Format Generators Graphkit List Pid Scp
