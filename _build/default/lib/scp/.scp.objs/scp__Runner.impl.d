lib/scp/runner.ml: Ballot Delay Engine Fbqs Format Graphkit List Msg Node Pid Simkit Statement Value
