(** End-to-end consensus stacks on a knowledge graph.

    The paper's comparison, as runnable pipelines:

    - {!scp_with_local_slices}: the Section IV strawman — SCP over
      slices each process derives from [PD_i] and [f] alone. Subject to
      Theorem 2's agreement violations.
    - {!scp_with_sink_detector}: Corollary 2's stack — run the sink
      detector (Algorithm 3), build slices with Algorithm 2, then run
      SCP. Solves consensus whenever the graph is Byzantine-safe with a
      2f+1-correct sink.
    - {!bftcup}: the baseline — sink discovery, PBFT among the sink,
      dissemination. Solves consensus from [PD_i] and [f] alone.

    All three report the same outcome shape so experiments can tabulate
    them side by side, and all three take one {!Simkit.Run_config.t}
    carrying the seed, timing model and observability sinks. Multi-stage
    stacks reuse the same config for every stage (the SCP stage of
    {!scp_with_sink_detector} reseeds with [seed + 1] so the two stages
    draw distinct delay streams). *)

open Graphkit

type verdict = {
  all_decided : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
  discovery_msgs : int;  (** 0 for stacks without a discovery stage *)
  consensus_msgs : int;
  total_time : int;  (** simulated ticks across stages *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val scp_with_local_slices :
  ?cfg:Simkit.Run_config.t ->
  ?rule:(Cup.Participant_detector.t -> Pid.t -> Fbqs.Slice.t) ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict

val scp_with_sink_detector :
  ?cfg:Simkit.Run_config.t ->
  ?nonsink_threshold:int ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict
(** [nonsink_threshold] overrides the non-sink slice size of Algorithm 2
    (default [f + 1]) for the ablation study. *)

val bftcup :
  ?cfg:Simkit.Run_config.t ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict
(** The BFT-CUP stack does not yet thread observability sinks through
    its internal stages; only the timing fields of [cfg] apply. *)

(** A pipeline selector, for sweep-style callers that pick the stack at
    run time (CLI, bench harness). *)
type stack = Scp_local | Scp_sink_detector | Bftcup

val sweep :
  ?jobs:int ->
  ?cfg:Simkit.Run_config.t ->
  stack:stack ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  int list ->
  (int * verdict) list
(** [sweep ~jobs ~stack ... seeds] runs one independent consensus
    instance per seed through {!Simkit.Pool.map} and returns
    [(seed, verdict)] pairs in input order — byte-identical to the
    sequential run for every [jobs]. The config's [metrics]/[trace]
    sinks are stripped (each worker is its own process; see DESIGN.md
    §10); use the single-run entry points to observe one run. *)
